// Command mbeload is the load-test harness for the mbed daemon. It
// drives N concurrent clients through the full job protocol — submit,
// poll, stream results, verify the order-invariant digest — sweeping N
// to find the saturation knee, and writes the latency/throughput/shed
// rows to a provenance-stamped BENCH_server.json (the service analogue
// of BENCH_parallel.json).
//
//	mbeload -addr http://127.0.0.1:8080 -levels 1,2,4,8 -json BENCH_server.json
//	mbeload -self -dataset UL -levels 1,2 -jobs 4 -json out.json   # in-process daemon
//	mbeload -check BENCH_server.json                               # schema gate only
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8080", "base URL of a running mbed daemon")
		self    = flag.Bool("self", false, "start an in-process daemon over a temp store instead of dialing -addr")
		dataset = flag.String("dataset", "UL", "synthetic dataset to enumerate (see internal/datasets)")
		levels  = flag.String("levels", "1,2,4,8", "comma-separated concurrency sweep")
		jobs    = flag.Int("jobs", 8, "jobs per concurrency level")
		jsonOut = flag.String("json", "", "write the sweep to this BENCH_server.json path")
		check   = flag.String("check", "", "validate an existing BENCH_server.json and exit")
		timeout = flag.Duration("timeout", 2*time.Minute, "per-job end-to-end budget")
		seed    = flag.Int64("seed", 1, "base ordering seed (each job gets a distinct seed)")
		workers = flag.Int("concurrency", 0, "-self daemon executor width (0 = 2)")
		quiet   = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()

	if *check != "" {
		if err := harness.ValidateBenchServer(*check); err != nil {
			fmt.Fprintln(os.Stderr, "mbeload: check failed:", err)
			os.Exit(1)
		}
		fmt.Printf("mbeload: %s ok\n", *check)
		return
	}

	lv, err := harness.ParseLevels(*levels)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbeload:", err)
		os.Exit(2)
	}

	baseURL := *addr
	if *self {
		url, stop, err := startSelfDaemon(*workers, *quiet)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbeload:", err)
			os.Exit(1)
		}
		defer stop()
		baseURL = url
	}

	cfg := harness.LoadConfig{
		BaseURL:      baseURL,
		Dataset:      *dataset,
		Levels:       lv,
		JobsPerLevel: *jobs,
		Timeout:      *timeout,
		SeedBase:     *seed,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mbeload: "+format+"\n", args...)
		}
	}

	file, err := harness.RunLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbeload:", err)
		os.Exit(1)
	}
	for _, r := range file.Rows {
		knee := ""
		if r.SaturationKnee {
			knee = "  <-- saturation knee"
		}
		fmt.Printf("c=%-3d ok=%-3d shed=%-3d err=%-3d p50=%8.1fms p95=%8.1fms p99=%8.1fms %7.2f jobs/s shed=%4.0f%%%s\n",
			r.Concurrency, r.OK, r.Shed, r.Errors, r.P50MS, r.P95MS, r.P99MS,
			r.ThroughputJPS, r.ShedRate*100, knee)
	}
	if *jsonOut != "" {
		if err := harness.WriteBenchServer(file, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "mbeload:", err)
			os.Exit(1)
		}
		if err := harness.ValidateBenchServer(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "mbeload: self-check failed:", err)
			os.Exit(1)
		}
		fmt.Printf("mbeload: wrote %s (%d rows)\n", *jsonOut, len(file.Rows))
	}
}

// startSelfDaemon boots an mbed server over a throwaway store on a
// loopback port, so CI and quick local sweeps need no external process.
func startSelfDaemon(workers int, quiet bool) (baseURL string, stop func(), err error) {
	dir, err := os.MkdirTemp("", "mbeload-store-*")
	if err != nil {
		return "", nil, err
	}
	level := slog.LevelWarn // daemon chatter would drown the sweep output
	if quiet {
		level = slog.LevelError
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	srv, err := server.New(server.Config{
		Dir:         dir,
		Concurrency: workers,
		Logger:      logger,
	})
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close(time.Second)
		os.RemoveAll(dir)
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	stop = func() {
		obs.ShutdownServer(httpSrv, obs.ShutdownTimeout)
		srv.Close(5 * time.Second)
		os.RemoveAll(dir)
	}
	return "http://" + ln.Addr().String(), stop, nil
}
