package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/svgplot"
)

// knownStates orders the canonical worker states in the legend; states the
// schema grows later still render, appended after these.
var knownStates = []string{"busy", "steal", "park", "idle", "done"}

// renderTimeline reads a JSONL observability event stream (written by
// `mbe -events` or any obs.JSONLSink) and renders the worker-utilization
// timeline: for each sampler tick, the share of workers in each state as a
// 100%-stacked bar. Long runs are subsampled to at most 48 ticks so the
// time labels stay readable.
func renderTimeline(eventsPath, outPath string) error {
	f, err := os.Open(eventsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	evs, err := obs.ReadEvents(f)
	if err != nil {
		return err
	}

	type tick struct {
		label  string
		counts map[string]float64
	}
	title := "Worker utilization"
	var ticks []tick
	seen := map[string]bool{}
	for _, e := range evs {
		switch e.Type {
		case "run_start":
			title = fmt.Sprintf("Worker utilization — %s t=%d", e.Algorithm, e.Threads)
			if e.Dataset != "" {
				title += " on " + e.Dataset
			}
		case "sample":
			if e.Snap == nil || len(e.Snap.Workers) == 0 {
				continue
			}
			c := map[string]float64{}
			for _, w := range e.Snap.Workers {
				c[w.State]++
				seen[w.State] = true
			}
			ticks = append(ticks, tick{label: fmt.Sprintf("%.1fs", e.TMS/1000), counts: c})
		}
	}
	if len(ticks) == 0 {
		return fmt.Errorf("%s has no sample events with worker rows (was the run observed? see mbe -events)", eventsPath)
	}
	const maxTicks = 48
	if len(ticks) > maxTicks {
		sub := make([]tick, 0, maxTicks)
		for i := 0; i < maxTicks; i++ {
			sub = append(sub, ticks[i*len(ticks)/maxTicks])
		}
		ticks = sub
	}

	var states []string
	for _, s := range knownStates {
		if seen[s] {
			states = append(states, s)
			delete(seen, s)
		}
	}
	var extra []string
	for s := range seen {
		extra = append(extra, s)
	}
	sort.Strings(extra)
	states = append(states, extra...)

	cats := make([]string, len(ticks))
	series := make([]svgplot.Series, len(states))
	for si, s := range states {
		series[si] = svgplot.Series{Name: s, Values: make([]float64, len(ticks))}
	}
	for ti, t := range ticks {
		cats[ti] = t.label
		for si, s := range states {
			series[si].Values[ti] = t.counts[s]
		}
	}

	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := svgplot.StackedPercent(out, title, "% of workers", cats, series); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// timelineOutPath derives the SVG path from the events path.
func timelineOutPath(eventsPath string) string {
	base := strings.TrimSuffix(eventsPath, ".jsonl")
	return base + "_workers.svg"
}
