// Command mbeplot renders SVG figures from the CSV series a previous
// `mbebench -csv <dir>` run produced — the equivalent of the original
// artifact's fig/genfig.sh:
//
//	mbebench -exp all -csv results/
//	mbeplot -dir results/
//
// One SVG per available figure is written next to its CSV.
//
// It also renders the worker-utilization timeline from a live-run JSONL
// event stream (docs/OBSERVABILITY.md):
//
//	mbe -d GH -a ParAdaMBE -t 8 -events run.jsonl
//	mbeplot -events run.jsonl            # writes run_workers.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	dir := flag.String("dir", "results", "directory containing figN.csv files")
	events := flag.String("events", "", "JSONL event stream (mbe -events) to render as a worker-utilization timeline")
	out := flag.String("o", "", "output SVG path for -events (default: <events>_workers.svg)")
	flag.Parse()

	if *events != "" {
		path := *out
		if path == "" {
			path = timelineOutPath(*events)
		}
		if err := renderTimeline(*events, path); err != nil {
			fmt.Fprintln(os.Stderr, "mbeplot:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
		return
	}

	written, err := harness.RenderPlots(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbeplot:", err)
		os.Exit(1)
	}
	if len(written) == 0 {
		fmt.Fprintf(os.Stderr, "mbeplot: no fig*.csv found in %s (run mbebench -csv first)\n", *dir)
		os.Exit(1)
	}
	for _, f := range written {
		fmt.Println("wrote", f)
	}
}
