// Command mbeplot renders SVG figures from the CSV series a previous
// `mbebench -csv <dir>` run produced — the equivalent of the original
// artifact's fig/genfig.sh:
//
//	mbebench -exp all -csv results/
//	mbeplot -dir results/
//
// One SVG per available figure is written next to its CSV.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	dir := flag.String("dir", "results", "directory containing figN.csv files")
	flag.Parse()

	written, err := harness.RenderPlots(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbeplot:", err)
		os.Exit(1)
	}
	if len(written) == 0 {
		fmt.Fprintf(os.Stderr, "mbeplot: no fig*.csv found in %s (run mbebench -csv first)\n", *dir)
		os.Exit(1)
	}
	for _, f := range written {
		fmt.Println("wrote", f)
	}
}
