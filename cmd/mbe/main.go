// Command mbe enumerates maximal bicliques in a bipartite graph, mirroring
// the paper artifact's MBE_ALL tool:
//
//	mbe -i out.github -a ParAdaMBE -t 8 -o asc -tau 64
//	mbe -d GH -a AdaMBE               # built-in synthetic dataset
//	mbe -d BX -a FMBE -tle 30s        # competitor with a time budget
//	mbe -d UL -print                  # print every maximal biclique
//
// Input is a KONECT-format edge list (-i), a binary cache (-bin), or a
// named synthetic dataset (-d). The graph is oriented so the smaller side
// is V. Output reports the count, runtime (enumeration only, as in the
// paper) and basic graph statistics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	mbe "repro"
)

var algorithms = map[string]mbe.Algorithm{
	"AdaMBE":     mbe.AdaMBE,
	"ParAdaMBE":  mbe.ParAdaMBE,
	"Baseline":   mbe.BaselineMBE,
	"AdaMBE-LN":  mbe.AdaMBELN,
	"AdaMBE-BIT": mbe.AdaMBEBIT,
	"FMBE":       mbe.FMBE,
	"PMBE":       mbe.PMBE,
	"ooMBEA":     mbe.OOMBEA,
	"ParMBE":     mbe.ParMBE,
	"GMBE":       mbe.GMBESim,
}

var orderings = map[string]mbe.Ordering{
	"asc":  mbe.OrderAscendingDegree,
	"rand": mbe.OrderRandom,
	"uc":   mbe.OrderUnilateralCore,
	"none": mbe.OrderNone,
}

func main() {
	var (
		input    = flag.String("i", "", "input KONECT edge-list file")
		binary   = flag.String("bin", "", "input binary graph cache (see mbegen -bin)")
		dataset  = flag.String("d", "", "built-in synthetic dataset name (e.g. GH, BX, ceb, LJ30)")
		algo     = flag.String("a", "AdaMBE", "algorithm: AdaMBE|ParAdaMBE|Baseline|AdaMBE-LN|AdaMBE-BIT|FMBE|PMBE|ooMBEA|ParMBE|GMBE")
		threads  = flag.Int("t", 0, "threads for parallel algorithms (0 = all cores)")
		tau      = flag.Int("tau", 0, "bitmap threshold τ (0 = 64)")
		ord      = flag.String("o", "asc", "vertex ordering for the AdaMBE family: asc|rand|uc|none")
		seed     = flag.Int64("seed", 0, "seed for -o rand")
		tle      = flag.Duration("tle", 0, "time budget (0 = unlimited); partial count reported on expiry")
		maxMem   = flag.Int64("maxmem", 0, "soft engine-memory budget in MiB (0 = unlimited); partial count reported when exceeded")
		print    = flag.Bool("print", false, "print every maximal biclique to stdout")
		progress = flag.Duration("progress", 0, "print a progress line every interval (e.g. 10s)")
		find     = flag.String("find", "", "optimization instead of enumeration: edge|balanced|vertex")
		query    = flag.Int("query", -1, "personalized maximum biclique containing V-side vertex N")
		minL     = flag.Int("minl", 0, "size-bounded enumeration: require |L| ≥ minl (with -minr)")
		minR     = flag.Int("minr", 0, "size-bounded enumeration: require |R| ≥ minr (with -minl)")
	)
	flag.Parse()

	g, err := loadGraph(*input, *binary, *dataset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbe:", err)
		os.Exit(1)
	}
	a, ok := algorithms[*algo]
	if !ok {
		fmt.Fprintf(os.Stderr, "mbe: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	o, ok := orderings[*ord]
	if !ok {
		fmt.Fprintf(os.Stderr, "mbe: unknown ordering %q\n", *ord)
		os.Exit(2)
	}

	st := g.Stats()
	fmt.Printf("graph: |U|=%d |V|=%d |E|=%d\n", st.NU, st.NV, st.Edges)

	if *find != "" || *query >= 0 || *minL > 0 || *minR > 0 {
		if err := runFinder(g, *find, *query, *minL, *minR, *threads, *tau, *tle); err != nil {
			fmt.Fprintln(os.Stderr, "mbe:", err)
			os.Exit(1)
		}
		return
	}

	// Ctrl-C (or SIGTERM) cancels the run instead of killing the process:
	// the engines stop at their next amortized check and the partial count
	// is still printed below. A second signal terminates immediately.
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSignals()

	opts := mbe.Options{
		Algorithm: a,
		Tau:       *tau,
		Threads:   *threads,
		Ordering:  o,
		Seed:      *seed,
		Context:   ctx,
	}
	if *tle > 0 {
		opts.Deadline = time.Now().Add(*tle)
	}
	if *maxMem > 0 {
		opts.MaxMemoryBytes = *maxMem << 20
	}
	if *print {
		opts.OnBiclique = func(L, R []int32) {
			fmt.Printf("L=%v R=%v\n", L, R)
		}
	}
	if *progress > 0 {
		stop := startProgress(&opts, *progress)
		defer stop()
	}

	res, err := mbe.Enumerate(g, opts)
	if err != nil && !errors.Is(err, mbe.ErrPanic) {
		fmt.Fprintln(os.Stderr, "mbe:", err)
		os.Exit(1)
	}
	var status string
	switch res.StopReason {
	case mbe.StopNone:
		status = "complete"
	case mbe.StopDeadline:
		status = "TLE (partial)"
	case mbe.StopCanceled:
		status = "interrupted (partial)"
	case mbe.StopMemoryBudget:
		status = "memory budget (partial)"
	default:
		status = res.StopReason.String() + " (partial)"
	}
	fmt.Printf("algorithm: %s\nmaximal bicliques: %d (%s)\nenumeration time: %v\n",
		a, res.Count, status, res.Elapsed.Round(time.Millisecond))
	if err != nil {
		// A recovered worker panic: the partial count above is valid, but
		// surface the failure and exit non-zero.
		fmt.Fprintln(os.Stderr, "mbe:", err)
		os.Exit(1)
	}
}

// startProgress wraps the options' handler with an atomic counter and
// prints an enumeration-rate line at each interval (the paper's Fig. 9b
// style progress reporting for billion-biclique runs).
func startProgress(opts *mbe.Options, every time.Duration) (stop func()) {
	var n atomic.Int64
	inner := opts.OnBiclique
	opts.OnBiclique = func(L, R []int32) {
		n.Add(1)
		if inner != nil {
			inner(L, R)
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	start := time.Now()
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				el := time.Since(start).Round(time.Second)
				cnt := n.Load()
				rate := float64(cnt) / time.Since(start).Seconds()
				fmt.Fprintf(os.Stderr, "progress: %d maximal bicliques in %v (%.0f/s)\n", cnt, el, rate)
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// runFinder dispatches the biclique-optimization modes (-find, -query,
// -minl/-minr).
func runFinder(g *mbe.Graph, find string, query, minL, minR, threads, tau int, tle time.Duration) error {
	fo := mbe.FindOptions{Threads: threads, Tau: tau}
	if tle > 0 {
		fo.Deadline = time.Now().Add(tle)
	}
	report := func(kind string, res mbe.FindResult) {
		if !res.Found {
			fmt.Printf("%s: no biclique found\n", kind)
			return
		}
		status := ""
		if res.TimedOut {
			status = " (TLE: best found so far)"
		}
		fmt.Printf("%s%s: |L|=%d |R|=%d edges=%d\n  L=%v\n  R=%v\n",
			kind, status, len(res.Best.L), len(res.Best.R), res.Best.Edges(), res.Best.L, res.Best.R)
	}
	switch {
	case query >= 0:
		res, err := mbe.PersonalizedMaximumBiclique(g, int32(query), fo)
		if err != nil {
			return err
		}
		report(fmt.Sprintf("personalized maximum biclique (v%d)", query), res)
	case minL > 0 || minR > 0:
		if minL < 1 || minR < 1 {
			return fmt.Errorf("-minl and -minr must both be ≥ 1")
		}
		n, err := mbe.EnumerateSizeBounded(g, minL, minR, func(L, R []int32) {
			fmt.Printf("L=%v R=%v\n", L, R)
		}, fo)
		if err != nil {
			return err
		}
		fmt.Printf("maximal bicliques with |L|≥%d and |R|≥%d: %d\n", minL, minR, n)
	case find == "edge":
		res, err := mbe.MaximumEdgeBiclique(g, fo)
		if err != nil {
			return err
		}
		report("maximum edge biclique", res)
	case find == "balanced":
		res, err := mbe.MaximumBalancedBiclique(g, fo)
		if err != nil {
			return err
		}
		report("maximum balanced biclique", res)
	case find == "vertex":
		res, err := mbe.MaximumVertexBiclique(g, fo)
		if err != nil {
			return err
		}
		report("maximum vertex biclique", res)
	default:
		return fmt.Errorf("unknown -find %q (want edge|balanced|vertex)", find)
	}
	return nil
}

func loadGraph(input, binary, dataset string) (*mbe.Graph, error) {
	n := 0
	for _, s := range []string{input, binary, dataset} {
		if s != "" {
			n++
		}
	}
	if n != 1 {
		return nil, fmt.Errorf("exactly one of -i, -bin, -d is required")
	}
	switch {
	case input != "":
		return mbe.LoadKonect(input)
	case binary != "":
		f, err := os.Open(binary)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return mbe.ReadBinary(f)
	default:
		return mbe.Dataset(dataset)
	}
}
