// Command mbe enumerates maximal bicliques in a bipartite graph, mirroring
// the paper artifact's MBE_ALL tool:
//
//	mbe -i out.github -a ParAdaMBE -t 8 -o asc -tau 64
//	mbe -d GH -a AdaMBE               # built-in synthetic dataset
//	mbe -d BX -a FMBE -tle 30s        # competitor with a time budget
//	mbe -d UL -print                  # print every maximal biclique
//	mbe -d GH -t 8 -progress 10s -events run.jsonl -debug-addr :6060
//	mbe -d ceb -t 8 -out run.spool -ckpt-every 5s   # durable spooled run
//	mbe -d ceb -t 8 -out run.spool -resume          # resume after Ctrl-C
//	mbe cat -digest run.spool                        # digest the spool
//
// Input is a KONECT-format edge list (-i), a binary cache (-bin), or a
// named synthetic dataset (-d). The graph is oriented so the smaller side
// is V. Output reports the count, runtime (enumeration only, as in the
// paper) and basic graph statistics.
//
// Durable runs (docs/DURABILITY.md): -out streams every biclique to a
// sharded on-disk spool and checkpoints the run so an interrupted
// enumeration resumes with -resume, losing and duplicating nothing.
// `mbe cat` replays or digests a spool without re-enumerating.
//
// Live observability (docs/OBSERVABILITY.md): -progress prints a periodic
// rate/ETA line to stderr, -events writes the structured JSONL event
// stream (plot it with mbeplot -events), and -debug-addr serves
// /debug/progress, expvar and pprof (including live execution traces) over
// HTTP while the run is in flight.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	mbe "repro"
	"repro/internal/ckpt"
	"repro/internal/obs"
	"repro/internal/spool"
)

func main() {
	// Subcommands dispatch on the bare first argument, before the flag
	// package sees anything.
	if len(os.Args) > 1 && os.Args[1] == "cat" {
		runCat(os.Args[2:])
		return
	}
	var (
		input     = flag.String("i", "", "input KONECT edge-list file")
		binary    = flag.String("bin", "", "input binary graph cache (see mbegen -bin)")
		dataset   = flag.String("d", "", "built-in synthetic dataset name (e.g. GH, BX, ceb, LJ30)")
		algo      = flag.String("a", "AdaMBE", "algorithm: "+strings.Join(mbe.AlgorithmNames, "|"))
		threads   = flag.Int("t", 0, "threads for parallel algorithms (0 = all cores)")
		tau       = flag.Int("tau", 0, "bitmap threshold τ (0 = 64)")
		ord       = flag.String("o", "asc", "vertex ordering for the AdaMBE family: asc|rand|uc|none")
		seed      = flag.Int64("seed", 0, "seed for -o rand")
		tle       = flag.Duration("tle", 0, "time budget (0 = unlimited); partial count reported on expiry")
		maxMem    = flag.Int64("maxmem", 0, "soft engine-memory budget in MiB (0 = unlimited); partial count reported when exceeded")
		print     = flag.Bool("print", false, "print every maximal biclique to stdout")
		progress  = flag.Duration("progress", 0, "print a progress line every interval (e.g. 10s)")
		events    = flag.String("events", "", "write JSONL observability events (run_start/sample/phase/worker_stall/run_end) to this file")
		sample    = flag.Duration("sample", time.Second, "sampling interval for -events and -debug-addr snapshots")
		debugAddr = flag.String("debug-addr", "", "serve /debug (progress JSON, expvar, pprof) on this address during the run")
		find      = flag.String("find", "", "optimization instead of enumeration: edge|balanced|vertex")
		query     = flag.Int("query", -1, "personalized maximum biclique containing V-side vertex N")
		minL      = flag.Int("minl", 0, "size-bounded enumeration: require |L| ≥ minl (with -minr)")
		minR      = flag.Int("minr", 0, "size-bounded enumeration: require |R| ≥ minr (with -minl)")
		out       = flag.String("out", "", "spool directory: stream every biclique to durable sharded storage (AdaMBE family and BBK)")
		resume    = flag.Bool("resume", false, "resume an interrupted spooled run from its checkpoint (requires -out)")
		fsync     = flag.String("fsync", "checkpoint", "spool fsync policy: never|checkpoint|always")
		ckptEvery = flag.Duration("ckpt-every", 0, "checkpoint cadence for -out (0 = default 10s, negative = only at exit)")
		compress  = flag.Bool("spool-compress", false, "flate-compress spool frames")
		roots     = flag.String("roots", "", "enumerate only the root range a:b of the ordered V side (b empty = |V|); disjoint ranges partition the output exactly (AdaMBE family and BBK)")
		digestOut = flag.Bool("digest", false, "accumulate the run's order-invariant multiset digest and print it; digests of disjoint -roots shards merge into the full run's digest")
	)
	flag.Parse()

	g, err := loadGraph(*input, *binary, *dataset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbe:", err)
		os.Exit(1)
	}
	a, err := mbe.ParseAlgorithm(*algo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	o, err := mbe.ParseOrdering(*ord)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	st := g.Stats()
	fmt.Printf("graph: |U|=%d |V|=%d |E|=%d\n", st.NU, st.NV, st.Edges)

	// The debug endpoint is useful in every mode (pprof profiles and
	// execution traces work even for the finder modes), so it starts before
	// the mode dispatch.
	if *debugAddr != "" {
		bound, shutdown, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbe: debug endpoint:", err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "mbe: serving /debug on http://%s\n", bound)
	}

	if *find != "" || *query >= 0 || *minL > 0 || *minR > 0 {
		if err := runFinder(g, *find, *query, *minL, *minR, *threads, *tau, *tle); err != nil {
			fmt.Fprintln(os.Stderr, "mbe:", err)
			os.Exit(1)
		}
		return
	}

	// Ctrl-C (or SIGTERM) cancels the run instead of killing the process:
	// the engines stop at their next amortized check and the partial count
	// is still printed below. A second signal terminates immediately.
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSignals()

	opts := mbe.Options{
		Algorithm: a,
		Tau:       *tau,
		Threads:   *threads,
		Ordering:  o,
		Seed:      *seed,
		Context:   ctx,
	}
	if *tle > 0 {
		opts.Deadline = time.Now().Add(*tle)
	}
	if *out != "" || *resume {
		mode, err := spool.ParseFsyncMode(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbe:", err)
			os.Exit(2)
		}
		opts.SpoolDir = *out
		opts.Resume = *resume
		opts.SpoolFsync = mode
		opts.SpoolCompress = *compress
		opts.Checkpoint.Every = *ckptEvery
		// A torn checkpoint (kill -9 through a non-atomic copy, lost
		// rename) degrades to a from-scratch resume; say so.
		opts.OnWarning = func(e error) { fmt.Fprintln(os.Stderr, "mbe: warning:", e) }
	}
	if *maxMem > 0 {
		opts.MaxMemoryBytes = *maxMem << 20
	}
	if *roots != "" {
		start, end, err := parseRootRange(*roots)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbe:", err)
			os.Exit(2)
		}
		opts.StartRoot, opts.EndRoot = start, end
	}
	if *print {
		opts.OnBiclique = func(L, R []int32) {
			fmt.Printf("L=%v R=%v\n", L, R)
		}
	}
	var runDigest mbe.Digest
	if *digestOut {
		inner := opts.OnBiclique
		opts.OnBiclique = func(L, R []int32) {
			runDigest.Observe(L, R)
			if inner != nil {
				inner(L, R)
			}
		}
	}
	finishObs := startObs(&opts, g, a, *dataset+*input+*binary,
		*threads, *progress, *sample, *events, *debugAddr != "")

	res, err := mbe.Enumerate(g, opts)
	finishObs(res.StopReason.String())
	if err != nil && !errors.Is(err, mbe.ErrPanic) {
		fmt.Fprintln(os.Stderr, "mbe:", err)
		os.Exit(1)
	}
	var status string
	switch res.StopReason {
	case mbe.StopNone:
		status = "complete"
	case mbe.StopDeadline:
		status = "TLE (partial)"
	case mbe.StopCanceled:
		status = "interrupted (partial)"
	case mbe.StopMemoryBudget:
		status = "memory budget (partial)"
	default:
		status = res.StopReason.String() + " (partial)"
	}
	fmt.Printf("algorithm: %s\nmaximal bicliques: %d (%s)\nenumeration time: %v\n",
		a, res.Count, status, res.Elapsed.Round(time.Millisecond))
	if *digestOut {
		fmt.Printf("digest: %s\n", runDigest.String())
	}
	if *out != "" {
		printSpoolStatus(*out)
	}
	if err != nil {
		// A recovered worker panic: the partial count above is valid, but
		// surface the failure and exit non-zero.
		fmt.Fprintln(os.Stderr, "mbe:", err)
		os.Exit(1)
	}
}

// runCat implements `mbe cat [-digest] <spool-dir>`: replay a spool
// written by -out without re-enumerating anything. The default prints
// every stored biclique in -print format; -digest prints the one-line
// multiset digest (record count + order-invariant fingerprint), the form
// scripts diff to prove two spools hold identical output.
func runCat(args []string) {
	fs := flag.NewFlagSet("mbe cat", flag.ExitOnError)
	digest := fs.Bool("digest", false, "print the spool's record count and multiset digest instead of the bicliques")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mbe cat [-digest] <spool-dir>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	dir := fs.Arg(0)
	if *digest {
		// SpoolDigest refuses a corrupt tail: a digest of silently
		// truncated output must never compare equal to anything.
		d, err := mbe.SpoolDigest(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbe cat:", err)
			os.Exit(1)
		}
		fmt.Println(d)
		return
	}
	n, err := mbe.ReadSpool(dir, func(L, R []int32) {
		fmt.Printf("L=%v R=%v\n", L, R)
	})
	if err != nil {
		// The valid prefix was already printed; report the torn tail.
		fmt.Fprintf(os.Stderr, "mbe cat: %v (%d valid records printed)\n", err, n)
		os.Exit(1)
	}
}

// printSpoolStatus summarizes the durable output after a spooled run:
// what is on disk and whether the spool is complete or resumable.
func printSpoolStatus(dir string) {
	states, err := spool.Verify(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbe: spool status:", err)
		return
	}
	var bytes, records int64
	for _, st := range states {
		bytes += st.ValidBytes
		records += st.Records
	}
	status := "resumable with -resume"
	if ck, found, err := ckpt.Load(dir); err == nil && found {
		if ck.Complete {
			status = "complete"
		} else {
			status = fmt.Sprintf("resumable with -resume from root %d", ck.Watermark)
		}
	}
	fmt.Printf("spool: %d records, %d bytes in %d shards, %s\n", records, bytes, len(states), status)
}

// startObs attaches the live observability stack to an enumeration run:
// a Recorder wired into the engine (Options.Obs), the progress sampler
// (stderr rate line and/or a JSONL event file), and the /debug/progress
// registry. It returns a finish function to call once Enumerate returns —
// on every exit path — which records the stop reason, takes the final
// sample and flushes the event file. When no observability flag is set it
// is a no-op returning a no-op.
func startObs(opts *mbe.Options, g *mbe.Graph, a mbe.Algorithm, dataset string,
	threads int, progress, sample time.Duration, events string, debug bool) func(stopReason string) {
	if progress <= 0 && events == "" && !debug {
		return func(string) {}
	}
	width := 1
	switch a {
	case mbe.ParAdaMBE, mbe.ParMBE, mbe.GMBESim:
		width = threads
		if width == 0 {
			width = runtime.GOMAXPROCS(0)
		}
	}
	rec := mbe.NewRecorder(mbe.RunInfo{
		Algorithm: a.String(), Dataset: dataset, Threads: width,
		NU: g.NU(), NV: g.NV(), Edges: g.NumEdges(),
	})
	external := !isCoreAlgorithm(a)
	if external {
		// The competitor engines carry no probes: feed the biclique counter
		// from the delivery handler so the sampler still sees live counts,
		// and drive the run lifecycle from here instead of the engine.
		rec.RunBegin(obs.RunConfig{Workers: 1, Deadline: opts.Deadline, MemBudgetBytes: opts.MaxMemoryBytes})
		probe := rec.Worker(0)
		probe.SetState(obs.StateBusy)
		inner := opts.OnBiclique
		opts.OnBiclique = func(L, R []int32) {
			probe.Biclique()
			if inner != nil {
				inner(L, R)
			}
		}
	} else {
		opts.Obs = rec
	}
	if debug {
		obs.Publish(rec)
	}
	so := obs.SamplerOptions{Interval: sample, OnSample: progressPrinter(progress)}
	var sink *obs.JSONLSink
	var eventsFile *os.File
	if events != "" {
		f, err := os.Create(events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbe: events:", err)
			os.Exit(1)
		}
		eventsFile = f
		sink = obs.NewJSONLSink(f)
		so.Sink = sink
	}
	stop := obs.StartSampler(rec, so)
	return func(stopReason string) {
		if external {
			rec.Finish(stopReason)
		}
		stop()
		if sink != nil {
			if err := sink.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "mbe: events:", err)
			}
			if err := eventsFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mbe: events:", err)
			}
		}
	}
}

func isCoreAlgorithm(a mbe.Algorithm) bool {
	switch a {
	case mbe.AdaMBE, mbe.ParAdaMBE, mbe.BaselineMBE, mbe.AdaMBELN, mbe.AdaMBEBIT:
		return true
	}
	return false
}

// progressPrinter returns the sampler hook behind -progress: the classic
// stderr rate line, throttled to at most one line per interval, with the
// root-frontier ETA appended once the frontier has moved.
func progressPrinter(every time.Duration) func(obs.Event) {
	if every <= 0 {
		return nil
	}
	last := time.Now() // first line lands ~one interval in, as before
	return func(e obs.Event) {
		if e.Snap == nil {
			return
		}
		now := time.Now()
		if now.Sub(last) < every-50*time.Millisecond {
			return
		}
		last = now
		el := (time.Duration(e.TMS) * time.Millisecond).Round(time.Second)
		line := fmt.Sprintf("progress: %d maximal bicliques in %v (%.0f/s)",
			e.Snap.Bicliques, el, e.BicliquesPerSec)
		if e.EtaMS > 0 {
			line += fmt.Sprintf(", eta ~%v", (time.Duration(e.EtaMS) * time.Millisecond).Round(time.Second))
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

// runFinder dispatches the biclique-optimization modes (-find, -query,
// -minl/-minr).
func runFinder(g *mbe.Graph, find string, query, minL, minR, threads, tau int, tle time.Duration) error {
	fo := mbe.FindOptions{Threads: threads, Tau: tau}
	if tle > 0 {
		fo.Deadline = time.Now().Add(tle)
	}
	report := func(kind string, res mbe.FindResult) {
		if !res.Found {
			fmt.Printf("%s: no biclique found\n", kind)
			return
		}
		status := ""
		if res.TimedOut {
			status = " (TLE: best found so far)"
		}
		fmt.Printf("%s%s: |L|=%d |R|=%d edges=%d\n  L=%v\n  R=%v\n",
			kind, status, len(res.Best.L), len(res.Best.R), res.Best.Edges(), res.Best.L, res.Best.R)
	}
	switch {
	case query >= 0:
		res, err := mbe.PersonalizedMaximumBiclique(g, int32(query), fo)
		if err != nil {
			return err
		}
		report(fmt.Sprintf("personalized maximum biclique (v%d)", query), res)
	case minL > 0 || minR > 0:
		if minL < 1 || minR < 1 {
			return fmt.Errorf("-minl and -minr must both be ≥ 1")
		}
		n, err := mbe.EnumerateSizeBounded(g, minL, minR, func(L, R []int32) {
			fmt.Printf("L=%v R=%v\n", L, R)
		}, fo)
		if err != nil {
			return err
		}
		fmt.Printf("maximal bicliques with |L|≥%d and |R|≥%d: %d\n", minL, minR, n)
	case find == "edge":
		res, err := mbe.MaximumEdgeBiclique(g, fo)
		if err != nil {
			return err
		}
		report("maximum edge biclique", res)
	case find == "balanced":
		res, err := mbe.MaximumBalancedBiclique(g, fo)
		if err != nil {
			return err
		}
		report("maximum balanced biclique", res)
	case find == "vertex":
		res, err := mbe.MaximumVertexBiclique(g, fo)
		if err != nil {
			return err
		}
		report("maximum vertex biclique", res)
	default:
		return fmt.Errorf("unknown -find %q (want edge|balanced|vertex)", find)
	}
	return nil
}

// parseRootRange parses the -roots "a:b" syntax into (StartRoot, EndRoot).
// "a:" leaves EndRoot 0 (= |V|). Empty/reversed ranges and ranges past |V|
// are rejected by Enumerate, where the graph's size is known.
func parseRootRange(s string) (start, end int32, err error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-roots %q: want a:b (e.g. 0:1000) or a: (to the last root)", s)
	}
	if a != "" {
		v, perr := strconv.ParseInt(a, 10, 32)
		if perr != nil || v < 0 {
			return 0, 0, fmt.Errorf("-roots %q: bad start root %q", s, a)
		}
		start = int32(v)
	}
	if b != "" {
		v, perr := strconv.ParseInt(b, 10, 32)
		if perr != nil || v < 0 {
			return 0, 0, fmt.Errorf("-roots %q: bad end root %q", s, b)
		}
		end = int32(v)
		if end <= start {
			return 0, 0, fmt.Errorf("-roots %q: empty or reversed range", s)
		}
	}
	return start, end, nil
}

func loadGraph(input, binary, dataset string) (*mbe.Graph, error) {
	n := 0
	for _, s := range []string{input, binary, dataset} {
		if s != "" {
			n++
		}
	}
	if n != 1 {
		return nil, fmt.Errorf("exactly one of -i, -bin, -d is required")
	}
	switch {
	case input != "":
		return mbe.LoadKonect(input)
	case binary != "":
		f, err := os.Open(binary)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return mbe.ReadBinary(f)
	default:
		return mbe.Dataset(dataset)
	}
}
