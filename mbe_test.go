package mbe_test

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	mbe "repro"
)

// paperGraph builds the Figure 1 example through the public API.
func paperGraph(t *testing.T) *mbe.Graph {
	t.Helper()
	var edges []mbe.Edge
	for v, us := range [][]int32{
		{0, 1, 2, 4, 5, 6, 7},
		{0, 1, 2},
		{0, 2, 3, 4, 5, 6},
		{0, 3, 4, 5, 6, 8},
	} {
		for _, u := range us {
			edges = append(edges, mbe.Edge{U: u, V: int32(v)})
		}
	}
	g, err := mbe.FromEdges(9, 4, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func allAlgorithms() []mbe.Algorithm {
	return []mbe.Algorithm{
		mbe.AdaMBE, mbe.ParAdaMBE, mbe.BaselineMBE, mbe.AdaMBELN, mbe.AdaMBEBIT,
		mbe.FMBE, mbe.PMBE, mbe.OOMBEA, mbe.ParMBE, mbe.GMBESim, mbe.BBK,
	}
}

func TestPaperExampleThroughPublicAPI(t *testing.T) {
	g := paperGraph(t)
	for _, a := range allAlgorithms() {
		res, err := mbe.Enumerate(g, mbe.Options{Algorithm: a, Threads: 2})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if res.Count != 9 {
			t.Fatalf("%v: count %d, want 9", a, res.Count)
		}
	}
}

func TestCount(t *testing.T) {
	n, err := mbe.Count(paperGraph(t))
	if err != nil || n != 9 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestHandlerReceivesValidBicliquesAllAlgorithms(t *testing.T) {
	g := mbe.GenerateUniform(3, 30, 12, 120)
	for _, a := range allAlgorithms() {
		seen := map[string]bool{}
		opts := mbe.Options{Algorithm: a, Threads: 2}
		opts.OnBiclique = func(L, R []int32) {
			if len(L) == 0 || len(R) == 0 {
				t.Fatalf("%v: empty side", a)
			}
			ls := append([]int32(nil), L...)
			rs := append([]int32(nil), R...)
			sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
			sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
			var b strings.Builder
			for _, u := range ls {
				b.WriteString(string(rune('A' + u%26)))
			}
			b.WriteByte('|')
			for _, v := range rs {
				b.WriteString(string(rune('a' + v%26)))
				if v < 0 || int(v) >= g.NV() {
					t.Fatalf("%v: R id %d out of range", a, v)
				}
			}
			for _, u := range L {
				for _, v := range R {
					if !g.HasEdge(u, v) {
						t.Fatalf("%v: missing edge (%d,%d)", a, u, v)
					}
				}
			}
			_ = seen[b.String()]
		}
		if _, err := mbe.Enumerate(g, opts); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
	}
}

func TestOrderingsAgree(t *testing.T) {
	g := mbe.GeneratePowerLaw(5, 80, 30, 500, 1.4, 1.4)
	var counts []int64
	for _, o := range []mbe.Ordering{
		mbe.OrderAscendingDegree, mbe.OrderRandom, mbe.OrderUnilateralCore, mbe.OrderNone,
	} {
		res, err := mbe.Enumerate(g, mbe.Options{Ordering: o, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.Count)
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("ordering changed the count: %v", counts)
		}
	}
}

func TestDatasetRegistryThroughAPI(t *testing.T) {
	g, err := mbe.Dataset("UL")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("empty dataset")
	}
	if _, err := mbe.Dataset("missing"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestKonectRoundTripThroughAPI(t *testing.T) {
	in := "% comment\n10 20\n11 20\n10 21\n"
	g, err := mbe.ReadKonect(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := mbe.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NU() != g.NU() {
		t.Fatal("binary round trip changed graph")
	}
}

func TestDeadlineThroughAPI(t *testing.T) {
	g := mbe.GenerateAffiliation(7, mbe.AffiliationConfig{
		NU: 300, NV: 100, Communities: 50, MeanU: 8, MeanV: 5, Density: 0.9,
	})
	res, err := mbe.Enumerate(g, mbe.Options{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("expired deadline not reported")
	}
}

func TestMetricsThroughAPI(t *testing.T) {
	g := mbe.GenerateUniform(9, 60, 20, 300)
	var m mbe.Metrics
	if _, err := mbe.Enumerate(g, mbe.Options{Algorithm: mbe.BaselineMBE, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if m.NodesGenerated == 0 {
		t.Fatal("no metrics recorded")
	}
}

func TestAlgorithmAndStatsStrings(t *testing.T) {
	for _, a := range allAlgorithms() {
		if a.String() == "" || strings.HasPrefix(a.String(), "Algorithm(") {
			t.Fatalf("bad name for %d: %q", int(a), a.String())
		}
	}
	if mbe.Algorithm(99).String() != "Algorithm(99)" {
		t.Fatal("unknown algorithm name wrong")
	}
	g := paperGraph(t)
	if g.Stats().NU != 9 || g.Stats().NV != 4 {
		t.Fatalf("stats: %+v", g.Stats())
	}
}

func TestBadOptionsThroughAPI(t *testing.T) {
	g := paperGraph(t)
	if _, err := mbe.Enumerate(g, mbe.Options{Algorithm: mbe.Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := mbe.Enumerate(g, mbe.Options{Ordering: mbe.Ordering(99)}); err == nil {
		t.Fatal("unknown ordering accepted")
	}
	if _, err := mbe.Enumerate(g, mbe.Options{Tau: -3}); err == nil {
		t.Fatal("negative tau accepted")
	}
}

func TestOrientThroughAPI(t *testing.T) {
	g, err := mbe.FromEdges(2, 5, []mbe.Edge{{U: 0, V: 0}, {U: 1, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	og := g.Orient()
	if og.NV() != 2 || og.NU() != 5 {
		t.Fatalf("orient failed: %d,%d", og.NU(), og.NV())
	}
	if len(og.NeighborsOfU(0)) != len(g.NeighborsOfV(0)) {
		t.Fatal("neighbor access broken after orient")
	}
}

// TestUnorderedEmitThroughPublicAPI runs ParAdaMBE with concurrent handler
// delivery and every ordering (the ordering path maps R back through the
// permutation, which must not share scratch between concurrent calls).
func TestUnorderedEmitThroughPublicAPI(t *testing.T) {
	g, err := mbe.Dataset("UL")
	if err != nil {
		t.Fatal(err)
	}
	for _, ord := range []mbe.Ordering{mbe.OrderAscendingDegree, mbe.OrderNone} {
		want := make(map[string]int)
		if _, err := mbe.Enumerate(g, mbe.Options{Ordering: ord, OnBiclique: func(L, R []int32) {
			want[keyOf(L, R)]++
		}}); err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		got := make(map[string]int)
		res, err := mbe.Enumerate(g, mbe.Options{
			Algorithm:     mbe.ParAdaMBE,
			Threads:       8,
			Ordering:      ord,
			UnorderedEmit: true,
			OnBiclique: func(L, R []int32) {
				k := keyOf(L, R)
				mu.Lock()
				got[k]++
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != int64(len(want)) {
			t.Fatalf("ordering %d: count %d, serial %d", ord, res.Count, len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("ordering %d: biclique %q delivered %d times, want %d", ord, k, got[k], n)
			}
		}
	}
}

func keyOf(L, R []int32) string {
	l := append([]int32(nil), L...)
	r := append([]int32(nil), R...)
	sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
	return fmt.Sprint(l, "|", r)
}
