package mbe

import (
	"context"
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/spool"
)

// orderingTag is the stable identifier stored in a spool's meta file:
// with the seed it pins the root decomposition a checkpoint watermark
// refers to, so a resume under a different ordering is refused.
func orderingTag(o Ordering) string {
	switch o {
	case OrderAscendingDegree:
		return "asc"
	case OrderRandom:
		return "rand"
	case OrderUnilateralCore:
		return "uc"
	case OrderNone:
		return "none"
	default:
		return fmt.Sprintf("ordering-%d", int(o))
	}
}

// enumerateSpooled is enumerateCore with the durable output path
// attached: bicliques stream to the sharded spool, the root frontier is
// tracked, and checkpoints make the run resumable.
func enumerateSpooled(g *Graph, opts Options) (Result, error) {
	b, variant, perm, err := resolveCoreRun(g, opts)
	if err != nil {
		return Result{}, err
	}
	threads := opts.coreThreads()
	workers := threads
	if workers < 1 {
		workers = 1
	}

	meta := spool.Meta{
		Version:   1,
		Tool:      "mbe",
		Algorithm: opts.Algorithm.String(),
		Ordering:  orderingTag(opts.Ordering),
		OrderSeed: opts.Seed,
		Tau:       opts.Tau,
		Shards:    workers,
		NU:        g.NU(),
		NV:        g.NV(),
		Edges:     g.NumEdges(),
		GraphHash: spool.GraphSignature(g.b),
		Compress:  opts.SpoolCompress,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}

	// A spool write error cancels the run promptly (StopCanceled):
	// without this, an enumeration with a broken disk would grind on for
	// hours silently dropping output.
	baseCtx := opts.Context
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	runCtx, cancel := context.WithCancel(baseCtx)
	defer cancel()

	sess, err := ckpt.Open(ckpt.OpenOptions{
		Dir:    opts.SpoolDir,
		Meta:   meta,
		Resume: opts.Resume,
		Every:  opts.Checkpoint.Every,
		Writer: spool.WriterOptions{
			Fsync:   opts.SpoolFsync,
			OnError: func(error) { cancel() },
		},
		OnWarn: opts.OnWarning,
	})
	if err != nil {
		return Result{}, err
	}
	if sess.AlreadyComplete() {
		return Result{StopReason: StopNone}, nil
	}

	handler := wrapMapBack(opts, perm)
	if opts.Obs != nil {
		sessRef := sess
		opts.Obs.SetSpoolStats(func() obs.SpoolStats {
			st := sessRef.Stats()
			return obs.SpoolStats{Bytes: st.Bytes, Frames: st.Frames, Records: st.Records, Fsyncs: st.Fsyncs}
		})
	}

	sess.Start()
	res, err := core.Enumerate(b, core.Options{
		Variant:        variant,
		Tau:            opts.Tau,
		Threads:        threads,
		OnBiclique:     handler,
		UnorderedEmit:  opts.UnorderedEmit,
		Deadline:       opts.Deadline,
		Context:        runCtx,
		MaxMemoryBytes: opts.MaxMemoryBytes,
		Metrics:        opts.Metrics,
		Obs:            opts.Obs,
		Sink:           sess.Sink(perm, workers),
		Frontier:       sess.Frontier(),
		StartRoot:      sess.StartRoot(),
	})
	complete := err == nil && res.StopReason == StopNone
	if ferr := sess.Finish(complete); ferr != nil && err == nil {
		err = fmt.Errorf("mbe: spool: %w", ferr)
	}
	return res, err
}

// enumerateSpooledBBK is enumerateBBK with the durable output path
// attached, mirroring enumerateSpooled: BBK shares the core engines'
// root partition (every biclique is emitted under root min(R)), so the
// same root-tagged spool + frontier-watermark checkpoint protocol is
// exact for it. BBK is serial, so the spool always has one shard.
func enumerateSpooledBBK(g *Graph, opts Options) (Result, error) {
	b, perm, err := resolveOrdering(g, opts)
	if err != nil {
		return Result{}, err
	}

	meta := spool.Meta{
		Version:   1,
		Tool:      "mbe",
		Algorithm: opts.Algorithm.String(),
		Ordering:  orderingTag(opts.Ordering),
		OrderSeed: opts.Seed,
		Tau:       opts.Tau,
		Shards:    1,
		NU:        g.NU(),
		NV:        g.NV(),
		Edges:     g.NumEdges(),
		GraphHash: spool.GraphSignature(g.b),
		Compress:  opts.SpoolCompress,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}

	// As in enumerateSpooled: a spool write error cancels the run
	// promptly instead of silently dropping output.
	baseCtx := opts.Context
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	runCtx, cancel := context.WithCancel(baseCtx)
	defer cancel()

	sess, err := ckpt.Open(ckpt.OpenOptions{
		Dir:    opts.SpoolDir,
		Meta:   meta,
		Resume: opts.Resume,
		Every:  opts.Checkpoint.Every,
		Writer: spool.WriterOptions{
			Fsync:   opts.SpoolFsync,
			OnError: func(error) { cancel() },
		},
		OnWarn: opts.OnWarning,
	})
	if err != nil {
		return Result{}, err
	}
	if sess.AlreadyComplete() {
		return Result{StopReason: StopNone}, nil
	}

	sess.Start()
	res, err := baselines.Run(b, baselines.BBK, baselines.Options{
		OnBiclique:     wrapMapBack(opts, perm),
		Deadline:       opts.Deadline,
		Context:        runCtx,
		MaxMemoryBytes: opts.MaxMemoryBytes,
		Metrics:        opts.Metrics,
		Sink:           sess.Sink(perm, 1),
		Frontier:       sess.Frontier(),
		StartRoot:      sess.StartRoot(),
	})
	complete := err == nil && res.StopReason == StopNone
	if ferr := sess.Finish(complete); ferr != nil && err == nil {
		err = fmt.Errorf("mbe: spool: %w", ferr)
	}
	return res, err
}

// wrapMapBack applies the enumerateCore R-side permutation map-back to
// the user handler (shared by the spooled path, whose Sink does its own
// map-back inside the session).
func wrapMapBack(opts Options, perm []int32) Handler {
	handler := opts.OnBiclique
	if handler == nil || perm == nil {
		return handler
	}
	inner := handler
	if opts.UnorderedEmit {
		return func(L, R []int32) {
			h := make([]int32, 0, len(R))
			for _, v := range R {
				h = append(h, perm[v])
			}
			inner(L, h)
		}
	}
	h := make([]int32, 0, 64)
	return func(L, R []int32) {
		h = h[:0]
		for _, v := range R {
			h = append(h, perm[v])
		}
		inner(L, h)
	}
}

// ReadSpool streams every biclique stored in the spool at dir to fn, in
// shard order, and returns how many records were delivered. The L and R
// slices are reused between calls (the usual Handler contract) and each
// side arrives sorted ascending in the original graph's id space.
//
// A corrupt shard tail (the signature of a crash mid-write) is NOT
// fatal: fn still receives the valid prefix of every shard, and the
// returned error then describes the first corruption. An interrupted
// run's spool therefore reads cleanly up to exactly what was durable.
func ReadSpool(dir string, fn Handler) (int64, error) {
	var wrapped func(root int32, L, R []int32)
	if fn != nil {
		wrapped = func(_ int32, L, R []int32) { fn(L, R) }
	}
	states, err := spool.Replay(dir, wrapped)
	if err != nil {
		return spool.TotalRecords(states), err
	}
	return spool.TotalRecords(states), spool.Clean(states)
}

// SpoolDigest replays the spool at dir into a Digest — the O(1)
// multiset summary used to compare a spooled (or resumed) run against
// any other enumeration of the same graph. Unlike ReadSpool it fails on
// a corrupt tail rather than digesting a silently shortened output.
func SpoolDigest(dir string) (Digest, error) {
	var d Digest
	states, err := spool.Replay(dir, func(_ int32, L, R []int32) { d.Observe(L, R) })
	if err != nil {
		return d, err
	}
	return d, spool.Clean(states)
}
