package mbe

import (
	"repro/internal/difftest"
)

// Fingerprint returns the canonical 64-bit fingerprint of one maximal
// biclique (L, R). It is invariant under reordering within each side but
// distinguishes the sides, so two enumerations emit the same fingerprint
// for a biclique regardless of traversal order, ordering heuristic, or
// thread schedule. Use it with Digest to compare runs without storing
// their outputs.
func Fingerprint(L, R []int32) uint64 { return difftest.Fingerprint(L, R) }

// Digest is a commutative, mergeable accumulator over biclique
// fingerprints: two enumerations of the same graph produce Equal digests
// iff they emitted the same multiset of bicliques, in O(1) memory and
// independent of emission order. Digest.Observe is Handler-compatible:
//
//	var d mbe.Digest
//	res, err := mbe.Enumerate(g, mbe.Options{OnBiclique: d.Observe})
//
// With Options.UnorderedEmit set, handler calls are concurrent: give each
// worker its own Digest and combine them with Merge instead of sharing
// one Observe across goroutines.
type Digest = difftest.Digest
