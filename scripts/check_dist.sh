#!/usr/bin/env bash
# check_dist.sh — CI end-to-end check of the distributed-enumeration
# contract (docs/DISTRIBUTED.md): a coordinator plus three worker
# processes on one host, with one worker kill -9'd mid-run, must finish
# with a global digest identical to a direct single-process `mbe` run.
# The lease janitor re-issues the dead worker's range from its confirmed
# watermark; any dropped or double-merged biclique changes the multiset
# digest and fails the check.
#
# Usage: check_dist.sh <mbecoord-binary> <mbe-binary> <dataset> [kill_after_s]
#
#   1. Run `mbe -digest` single-process; record the reference digest.
#   2. Start mbecoord (-exit-when-done, 2s lease TTL) and three workers.
#   3. After kill_after seconds, kill -9 one worker.
#   4. Wait for the coordinator to print the global digest and compare.
#
# A machine fast enough to finish before the kill lands is tolerated:
# the kill is then a no-op and the digests must still match.
set -u

coord_bin="${1:?usage: check_dist.sh <mbecoord-binary> <mbe-binary> <dataset> [kill_after_s]}"
mbe_bin="${2:?usage: check_dist.sh <mbecoord-binary> <mbe-binary> <dataset> [kill_after_s]}"
dataset="${3:?usage: check_dist.sh <mbecoord-binary> <mbe-binary> <dataset> [kill_after_s]}"
kill_after="${4:-1}"
addr="127.0.0.1:${MBE_DIST_PORT:-7641}"

work=$(mktemp -d) || exit 1
workers=()
cleanup() {
  for pid in "${workers[@]:-}" "${coord_pid:-}"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
  done
  rm -rf "$work"
}
trap cleanup EXIT

echo "check_dist: single-process reference run ($dataset, AdaMBE)"
ref=$("$mbe_bin" -d "$dataset" -a AdaMBE -digest | grep '^digest:') || {
  echo "check_dist: reference run failed" >&2; exit 1; }
echo "check_dist: reference $ref"

echo "check_dist: starting coordinator on $addr (12 ranges, 2s lease TTL)"
"$coord_bin" -addr "$addr" -dir "$work/dist" -d "$dataset" -a AdaMBE \
  -ranges 12 -lease-ttl 2s -exit-when-done >"$work/coord.out" 2>"$work/coord.err" &
coord_pid=$!

up=0
for _ in $(seq 100); do
  if curl -fsS "http://$addr/dist/v1/progress" >/dev/null 2>&1; then up=1; break; fi
  kill -0 "$coord_pid" 2>/dev/null || break
  sleep 0.1
done
[ "$up" = 1 ] || {
  echo "check_dist: coordinator never came up" >&2; cat "$work/coord.err" >&2; exit 1; }

for i in 1 2 3; do
  "$coord_bin" -worker -coord "http://$addr" -id "w$i" >"$work/w$i.out" 2>&1 &
  workers+=($!)
done

sleep "$kill_after"
echo "check_dist: kill -9 worker w2 (pid ${workers[1]})"
kill -9 "${workers[1]}" 2>/dev/null || true

# Liveness while the run heals: /metrics must keep serving the dist
# families (values are timing-dependent, presence is not).
curl -fsS "http://$addr/metrics" 2>/dev/null | grep -q '^dist_ranges_total' || {
  # The run may already be complete and the coordinator gone — only an
  # error if it is still alive and not answering.
  if kill -0 "$coord_pid" 2>/dev/null; then
    echo "check_dist: /metrics stopped serving dist families mid-run" >&2; exit 1
  fi
}

wait "$coord_pid" || {
  echo "check_dist: coordinator exited non-zero" >&2; cat "$work/coord.err" >&2; exit 1; }
got=$(grep '^digest:' "$work/coord.out") || {
  echo "check_dist: coordinator printed no digest" >&2; cat "$work/coord.out" >&2; exit 1; }
echo "check_dist: cluster   $got"

# Surviving workers exit on their own once the coordinator reports the
# run complete (410); the dead one is already gone.
wait "${workers[0]}" 2>/dev/null
wait "${workers[2]}" 2>/dev/null

if [ "$got" != "$ref" ]; then
  echo "check_dist: DIGEST MISMATCH — the re-issued lease dropped or duplicated bicliques" >&2
  echo "  reference: $ref" >&2
  echo "  cluster:   $got" >&2
  exit 1
fi
echo "check_dist: digests identical — 3-worker cluster with a kill -9 lost nothing"
