#!/usr/bin/env bash
# check_progress.sh — CI liveness check for the /debug/progress endpoint.
#
# Usage: check_progress.sh host:port [timeout_s]
#
# Polls a live /debug/progress endpoint (mbe/mbebench -debug-addr) while an
# enumeration runs in another process and asserts the observability
# contract (docs/OBSERVABILITY.md):
#
#   1. the endpoint publishes a snapshot with non-empty counters while the
#      run is in flight, and
#   2. every counter is monotone non-decreasing between two polls of the
#      same run (run_id detects rollover between benchmark runs; on
#      rollover the check re-baselines).
#
# Exits non-zero when no progress appears within the timeout, or when a
# counter goes backwards. Needs only curl + sed, no jq.
set -u

addr="${1:?usage: check_progress.sh host:port [timeout_s]}"
timeout="${2:-60}"
url="http://$addr/debug/progress"

snap=$(mktemp) && snap2=$(mktemp) || exit 1
trap 'rm -f "$snap" "$snap2"' EXIT

# field <name> <file> — extract a top-level scalar from the pretty-printed
# snapshot JSON (two-space indent distinguishes top-level keys from the
# per-worker rows).
field() {
  sed -n "s/^  \"$1\": \"\{0,1\}\([^,\"]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$2" | head -n1
}

# Phase 1: wait for a snapshot with visible progress.
deadline=$(( $(date +%s) + timeout ))
while :; do
  if curl -fsS "$url" -o "$snap" 2>/dev/null; then
    nodes=$(field nodes "$snap")
    if [ -n "${nodes:-}" ] && [ "$nodes" -gt 0 ] 2>/dev/null; then
      break
    fi
  fi
  if [ "$(date +%s)" -ge "$deadline" ]; then
    echo "check_progress: no live progress on $url within ${timeout}s" >&2
    exit 1
  fi
  sleep 0.2
done

run=$(field run_id "$snap")
echo "check_progress: attached to run $run: phase=$(field phase "$snap") nodes=$nodes bicliques=$(field bicliques "$snap")"

# Phase 2: poll the same run again; counters must not go backwards.
tries=0
misses=0
while :; do
  sleep 0.3
  if ! curl -fsS "$url" -o "$snap2" 2>/dev/null; then
    misses=$(( misses + 1 ))
    if [ "$misses" -gt 5 ]; then
      echo "check_progress: endpoint at $url disappeared before a second same-run poll" >&2
      exit 1
    fi
    continue
  fi
  run2=$(field run_id "$snap2")
  if [ "$run2" != "$run" ]; then
    tries=$(( tries + 1 ))
    if [ "$tries" -gt 50 ]; then
      echo "check_progress: runs roll over faster than the poll interval; could not observe one run twice" >&2
      exit 1
    fi
    cp "$snap2" "$snap"
    run=$run2
    continue
  fi
  for f in nodes nodes_ln nodes_bit bicliques bitmaps tasks steals root_done; do
    a=$(field "$f" "$snap"); b=$(field "$f" "$snap2")
    a=${a:-0}; b=${b:-0}
    if [ "$b" -lt "$a" ] 2>/dev/null; then
      echo "check_progress: $f went backwards within run $run: $a -> $b" >&2
      exit 1
    fi
  done
  echo "check_progress: run $run monotone across polls (nodes $(field nodes "$snap") -> $(field nodes "$snap2"), bicliques $(field bicliques "$snap") -> $(field bicliques "$snap2"))"
  exit 0
done
