#!/usr/bin/env bash
# check_resume.sh — CI end-to-end check of the durable-run contract
# (docs/DURABILITY.md): an interrupted spooled enumeration, resumed,
# yields a spool whose digest is identical to an uninterrupted run's.
#
# Usage: check_resume.sh <mbe-binary> <dataset> [threads] [kill_after_s]
#
#   1. Run a clean spooled enumeration to completion; record its digest
#      (`mbe cat -digest`).
#   2. Start the same run into a fresh spool with a 1s checkpoint
#      cadence, send SIGINT mid-run (what Ctrl-C does), and let the
#      partial run exit cleanly.
#   3. Resume with -resume, then compare the final digest against the
#      clean run's. Any dropped or duplicated biclique changes the
#      multiset digest and fails the check.
#
# A machine fast enough to finish before the SIGINT lands is tolerated:
# the resume is then a no-op over a complete spool, and the digests must
# still match.
set -u

bin="${1:?usage: check_resume.sh <mbe-binary> <dataset> [threads] [kill_after_s]}"
dataset="${2:?usage: check_resume.sh <mbe-binary> <dataset> [threads] [kill_after_s]}"
threads="${3:-4}"
kill_after="${4:-2}"
algo="AdaMBE"
[ "$threads" -gt 1 ] 2>/dev/null && algo="ParAdaMBE"

work=$(mktemp -d) || exit 1
trap 'rm -rf "$work"' EXIT
clean="$work/clean.spool"
resumed="$work/resumed.spool"

echo "check_resume: clean spooled run ($dataset, $algo, t=$threads)"
"$bin" -d "$dataset" -a "$algo" -t "$threads" -out "$clean" || {
  echo "check_resume: clean run failed" >&2; exit 1; }
ref=$("$bin" cat -digest "$clean") || {
  echo "check_resume: clean spool did not verify" >&2; exit 1; }
echo "check_resume: reference digest $ref"

echo "check_resume: interrupted run (SIGINT after ${kill_after}s)"
"$bin" -d "$dataset" -a "$algo" -t "$threads" -out "$resumed" -ckpt-every 1s &
pid=$!
sleep "$kill_after"
# The run may already have finished on a fast machine; that is fine.
kill -INT "$pid" 2>/dev/null || true
wait "$pid" || { echo "check_resume: interrupted run exited non-zero" >&2; exit 1; }

echo "check_resume: resuming"
"$bin" -d "$dataset" -a "$algo" -t "$threads" -out "$resumed" -resume || {
  echo "check_resume: resume failed" >&2; exit 1; }

got=$("$bin" cat -digest "$resumed") || {
  echo "check_resume: resumed spool did not verify" >&2; exit 1; }
echo "check_resume: resumed digest   $got"

if [ "$got" != "$ref" ]; then
  echo "check_resume: DIGEST MISMATCH — resume dropped or duplicated bicliques" >&2
  echo "  reference: $ref" >&2
  echo "  resumed:   $got" >&2
  exit 1
fi
echo "check_resume: digests identical — interrupt+resume lost nothing"
