#!/usr/bin/env bash
# check_server.sh — CI end-to-end check of the mbed daemon contract
# (docs/SERVER.md): kill -9 recovery and load shedding.
#
# Usage: check_server.sh <mbed-binary> <mbe-binary> [dataset] [port]
#
# Phase 1 — crash recovery:
#   1. Record a reference digest with a direct `mbe` run of the dataset.
#   2. Start mbed, submit the dataset and an enumeration job, wait for
#      the job's first durable checkpoint, then kill -9 the daemon.
#   3. Restart mbed over the same store and wait for the job to finish.
#      Its digest must equal the direct run's — exactly-once resume, no
#      dropped or duplicated bicliques.
#
# Phase 2 — load shedding + telemetry:
#   4. Restart mbed with a one-job admission window, submit a slow job,
#      then a saturating burst: at least one submit must be shed with
#      429 + Retry-After (echoing the client's X-MBE-Trace) while
#      /debug/progress and job status reads keep answering 200.
#   5. Scrape /metrics mid-burst: the service families must be present
#      and parseable, and counters must be monotone across two scrapes.
#
# The daemon runs with -log-format json throughout, so the log file the
# script dumps on failure is machine-parseable structured events.
#
# A machine fast enough to finish the job before the kill lands is
# tolerated: recovery then adopts a done job and the digests must still
# match.
set -u

mbed="${1:?usage: check_server.sh <mbed-binary> <mbe-binary> [dataset] [port]}"
mbe="${2:?usage: check_server.sh <mbed-binary> <mbe-binary> [dataset] [port]}"
dataset="${3:-GH}"
port="${4:-18080}"
addr="127.0.0.1:$port"
base="http://$addr"

work=$(mktemp -d) || exit 1
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "check_server: $*" >&2; exit 1; }

wait_dead() { # wait until the (disowned) daemon pid is fully gone
  local i=0
  while kill -0 "$1" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && return 1
    sleep 0.1
  done
}

# json_field <key> — pull a string/number field out of one-object JSON
# (the daemon pretty-prints, so every field sits on its own line).
json_field() {
  sed -n "s/.*\"$1\": *\"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" | head -n1
}

wait_http() { # wait_http <url> <seconds>
  local url="$1" secs="$2" i=0
  while ! curl -fsS -o /dev/null "$url" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge $((secs * 10)) ] && return 1
    sleep 0.1
  done
}

start_daemon() { # start_daemon <extra flags...>
  "$mbed" -addr "$addr" -dir "$work/store" -ckpt-every 200ms -log-format json "$@" \
    >>"$work/mbed.log" 2>&1 &
  daemon_pid=$!
  disown "$daemon_pid" 2>/dev/null # silence bash's "Killed" notice on kill -9
  wait_http "$base/healthz" 15 || { cat "$work/mbed.log" >&2; fail "daemon never came up"; }
}

echo "check_server: reference run ($dataset, direct mbe)"
"$mbe" -d "$dataset" -t 1 -out "$work/ref.spool" >/dev/null || fail "reference run failed"
ref=$("$mbe" cat -digest "$work/ref.spool") || fail "reference spool did not verify"
echo "check_server: reference digest $ref"

# --- Phase 1: kill -9 mid-run, restart, resume ------------------------

trace_id="check-trace-$$"

start_daemon
graph_id=$(curl -fsS -X POST "$base/v1/graphs?dataset=$dataset" | json_field graph_id)
[ -n "$graph_id" ] || fail "graph submission returned no graph_id"
job_id=$(curl -fsS -X POST -H "X-MBE-Trace: $trace_id" \
  -d "{\"graph_id\":\"$graph_id\",\"threads\":1}" "$base/v1/jobs" | json_field job_id)
[ -n "$job_id" ] || fail "job submission returned no job_id"
echo "check_server: job $job_id running on graph $graph_id (trace $trace_id)"

# Wait for the first durable checkpoint so the kill lands after real
# progress, then kill -9 — no graceful anything.
ckpt="$work/store/jobs/$job_id/spool/checkpoint.json"
i=0
while [ ! -f "$ckpt" ]; do
  i=$((i + 1))
  [ "$i" -ge 300 ] && fail "no checkpoint appeared before timeout"
  sleep 0.1
done
kill -9 "$daemon_pid" || fail "could not kill daemon"
wait_dead "$daemon_pid" || fail "daemon pid lingered after kill -9"
daemon_pid=""
echo "check_server: daemon killed -9 mid-run, restarting over the same store"

start_daemon
state=""
i=0
while :; do
  status=$(curl -fsS "$base/v1/jobs/$job_id") || fail "status read failed after restart"
  state=$(printf '%s' "$status" | json_field state)
  case "$state" in
    done) break ;;
    failed | canceled) fail "job $job_id ended $state after restart: $status" ;;
  esac
  i=$((i + 1))
  [ "$i" -ge 1200 ] && fail "job $job_id still $state long after restart"
  sleep 0.1
done
got=$(printf '%s' "$status" | json_field digest)
echo "check_server: recovered digest   $got"
if [ "$got" != "$ref" ]; then
  fail "DIGEST MISMATCH — recovery dropped or duplicated bicliques
  reference: $ref
  recovered: $got"
fi
echo "check_server: digests identical — kill -9 + restart lost nothing"

# The trace id must have survived the crash: the restarted daemon reads
# it back from the persisted manifest, not from any in-memory state.
recovered_trace=$(printf '%s' "$status" | json_field trace_id)
[ "$recovered_trace" = "$trace_id" ] \
  || fail "trace id changed across kill -9: submitted $trace_id, recovered '$recovered_trace'"
echo "check_server: trace id $trace_id survived kill -9 recovery"
kill -9 "$daemon_pid" 2>/dev/null
wait_dead "$daemon_pid" || fail "daemon pid lingered after kill -9"
daemon_pid=""

# --- Phase 2: saturating burst sheds, reads survive -------------------

rm -rf "$work/store"
start_daemon -max-jobs 1 -t 1
graph_id=$(curl -fsS -X POST "$base/v1/graphs?dataset=$dataset" | json_field graph_id)
job_id=$(curl -fsS -X POST -d "{\"graph_id\":\"$graph_id\",\"threads\":1}" "$base/v1/jobs" | json_field job_id)
[ -n "$job_id" ] || fail "saturating job not accepted"

shed=0
for seed in 1 2 3 4 5 6 7 8; do
  code=$(curl -s -o "$work/shed.json" -w '%{http_code}' -X POST \
    -d "{\"graph_id\":\"$graph_id\",\"threads\":1,\"ordering\":\"rand\",\"seed\":$seed}" \
    "$base/v1/jobs")
  if [ "$code" = "429" ]; then
    curl -s -o /dev/null -D "$work/shed_headers" -X POST \
      -H "X-MBE-Trace: shed-trace-$$" \
      -d "{\"graph_id\":\"$graph_id\",\"threads\":1,\"ordering\":\"rand\",\"seed\":$seed}" \
      "$base/v1/jobs"
    retry_after=$(tr -d '\r' <"$work/shed_headers" | sed -n 's/^[Rr]etry-[Aa]fter: *//p')
    [ -n "$retry_after" ] || fail "429 without a Retry-After header"
    # A shed response still belongs to the client's trace.
    shed_trace=$(tr -d '\r' <"$work/shed_headers" | sed -n 's/^[Xx]-[Mm][Bb][Ee]-[Tt]race: *//p')
    [ "$shed_trace" = "shed-trace-$$" ] \
      || fail "429 did not echo X-MBE-Trace (got '$shed_trace')"
    shed=1
    break
  fi
done
[ "$shed" = "1" ] || fail "burst was never shed with 429 despite -max-jobs 1"
echo "check_server: burst shed with 429 (trace echoed), Retry-After: ${retry_after}s"

# --- Telemetry: /metrics mid-burst ------------------------------------

# The saturating job is still running and sheds just happened: every
# service family must be live, and counters must be monotone.
curl -fsS "$base/metrics" >"$work/metrics1" || fail "/metrics down while saturated"
for fam in mbed_http_requests_total mbed_http_request_seconds_bucket \
  mbed_job_queue_wait_seconds_count mbed_job_run_seconds_count \
  mbed_admission_shed_total mbed_jobs_active mbed_jobs_submitted_total; do
  grep -q "^$fam" "$work/metrics1" || fail "/metrics missing family $fam"
done
grep -q '^mbed_admission_shed_total{reason="queue_full"} [1-9]' "$work/metrics1" \
  || fail "shed counter did not record the queue_full 429s"

curl -fsS -o /dev/null "$base/v1/jobs/$job_id" # traffic between scrapes
curl -fsS "$base/metrics" >"$work/metrics2" || fail "second /metrics scrape failed"
sum_requests() { # total of mbed_http_requests_total across labels
  awk '/^mbed_http_requests_total{/ { s += $NF } END { printf "%d", s }' "$1"
}
r1=$(sum_requests "$work/metrics1")
r2=$(sum_requests "$work/metrics2")
[ "$r1" -gt 0 ] || fail "mbed_http_requests_total scraped as 0"
[ "$r2" -gt "$r1" ] || fail "request counter not monotone across scrapes ($r1 -> $r2)"
echo "check_server: /metrics live mid-burst, counters monotone ($r1 -> $r2)"

# Reads must keep answering while saturated.
curl -fsS -o /dev/null "$base/debug/progress" || fail "/debug/progress down while saturated"
curl -fsS -o /dev/null "$base/v1/jobs/$job_id" || fail "status read down while saturated"
curl -fsS -o /dev/null "$base/v1/jobs" || fail "job list down while saturated"
echo "check_server: reads stayed live under saturation — all checks passed"
