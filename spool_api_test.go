package mbe_test

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"

	mbe "repro"
)

// busyGraph builds a random bipartite graph dense enough that serial
// enumeration crosses many amortized stop-poll windows (tle.CheckEvery
// node visits per clock poll), so a mid-run context cancel is reliably
// observed — the UL dataset is too small for that.
func busyGraph(t *testing.T) *mbe.Graph {
	t.Helper()
	const nu, nv, ne = 200, 100, 2400
	seen := make(map[[2]int32]bool, ne)
	var edges []mbe.Edge
	state := uint64(0x9e3779b97f4a7c15)
	next := func(n int32) int32 {
		state = state*6364136223846793005 + 1442695040888963407
		return int32((state >> 33) % uint64(n))
	}
	for len(edges) < ne {
		u, v := next(nu), next(nv)
		if !seen[[2]int32{u, v}] {
			seen[[2]int32{u, v}] = true
			edges = append(edges, mbe.Edge{U: u, V: v})
		}
	}
	g, err := mbe.FromEdges(nu, nv, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// refDigest enumerates g in memory (no spool) and returns the
// reference digest.
func refDigest(t *testing.T, g *mbe.Graph, a mbe.Algorithm, threads int) mbe.Digest {
	t.Helper()
	var d mbe.Digest
	res, err := mbe.Enumerate(g, mbe.Options{Algorithm: a, Threads: threads, OnBiclique: d.Observe})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != d.Count {
		t.Fatalf("handler saw %d bicliques, result says %d", d.Count, res.Count)
	}
	return d
}

func TestSpooledEnumerateMatchesInMemory(t *testing.T) {
	for _, tc := range []struct {
		name     string
		algo     mbe.Algorithm
		threads  int
		compress bool
	}{
		{"AdaMBE", mbe.AdaMBE, 0, false},
		{"AdaMBE-compressed", mbe.AdaMBE, 0, true},
		{"ParAdaMBE-4", mbe.ParAdaMBE, 4, false},
		{"BBK", mbe.BBK, 0, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := mbe.Dataset("UL")
			if err != nil {
				t.Fatal(err)
			}
			want := refDigest(t, g, tc.algo, tc.threads)
			dir := filepath.Join(t.TempDir(), "spool")
			res, err := mbe.Enumerate(g, mbe.Options{
				Algorithm: tc.algo, Threads: tc.threads,
				SpoolDir: dir, SpoolCompress: tc.compress,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want.Count {
				t.Errorf("spooled run counted %d, want %d", res.Count, want.Count)
			}
			got, err := mbe.SpoolDigest(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("spool digest %s != in-memory digest %s", got, want)
			}
			n, err := mbe.ReadSpool(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			if n != want.Count {
				t.Errorf("ReadSpool delivered %d records, want %d", n, want.Count)
			}
		})
	}
}

// TestSpooledInterruptResume is the public-API acceptance path: cancel
// a spooled run mid-enumeration (exactly what Ctrl-C does in cmd/mbe),
// resume it, and require the final spool digest to be identical to an
// uninterrupted run's.
func TestSpooledInterruptResume(t *testing.T) {
	for _, algo := range []struct {
		name    string
		a       mbe.Algorithm
		threads int
	}{
		{"AdaMBE", mbe.AdaMBE, 0},
		{"ParAdaMBE-4", mbe.ParAdaMBE, 4},
		{"BBK", mbe.BBK, 0},
	} {
		t.Run(algo.name, func(t *testing.T) {
			g := busyGraph(t)
			want := refDigest(t, g, algo.a, algo.threads)
			dir := filepath.Join(t.TempDir(), "spool")

			ctx, cancel := context.WithCancel(context.Background())
			var seen atomic.Int64
			res, err := mbe.Enumerate(g, mbe.Options{
				Algorithm: algo.a, Threads: algo.threads,
				SpoolDir: dir,
				Context:  ctx,
				OnBiclique: func(L, R []int32) {
					if seen.Add(1) == want.Count/3 {
						cancel()
					}
				},
			})
			cancel()
			if err != nil {
				t.Fatal(err)
			}
			if res.StopReason != mbe.StopCanceled {
				t.Fatalf("interrupted run stopped with %s, want %s", res.StopReason, mbe.StopCanceled)
			}

			res, err = mbe.Enumerate(g, mbe.Options{
				Algorithm: algo.a, Threads: algo.threads,
				SpoolDir: dir, Resume: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.StopReason != mbe.StopNone {
				t.Fatalf("resume stopped early: %s", res.StopReason)
			}
			got, err := mbe.SpoolDigest(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("resumed spool digest %s != uninterrupted digest %s", got, want)
			}

			// A second resume of a complete spool is a clean no-op.
			res, err = mbe.Enumerate(g, mbe.Options{
				Algorithm: algo.a, Threads: algo.threads,
				SpoolDir: dir, Resume: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != 0 || res.StopReason != mbe.StopNone {
				t.Errorf("resume of complete spool: count=%d stop=%s, want 0/none", res.Count, res.StopReason)
			}
			if got2, err := mbe.SpoolDigest(dir); err != nil || !got2.Equal(want) {
				t.Errorf("no-op resume perturbed the spool: %s (err %v)", got2, err)
			}
		})
	}
}

func TestSpoolOptionValidation(t *testing.T) {
	g, err := mbe.Dataset("UL")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mbe.Enumerate(g, mbe.Options{Algorithm: mbe.AdaMBE, Resume: true}); err == nil {
		t.Error("Resume without SpoolDir must be rejected")
	}
	if _, err := mbe.Enumerate(g, mbe.Options{Algorithm: mbe.FMBE, SpoolDir: t.TempDir()}); err == nil {
		t.Error("SpoolDir with a baseline algorithm must be rejected")
	}

	// A resume under a different ordering/seed is refused: the
	// checkpoint watermark is only meaningful under the original order.
	dir := filepath.Join(t.TempDir(), "spool")
	if _, err := mbe.Enumerate(g, mbe.Options{Algorithm: mbe.AdaMBE, SpoolDir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := mbe.Enumerate(g, mbe.Options{
		Algorithm: mbe.AdaMBE, SpoolDir: dir, Resume: true,
		Ordering: mbe.OrderRandom, Seed: 3,
	}); err == nil {
		t.Error("resume under a different ordering must be rejected")
	}
	// Creating over an existing spool (without Resume) is refused too.
	if _, err := mbe.Enumerate(g, mbe.Options{Algorithm: mbe.AdaMBE, SpoolDir: dir}); err == nil {
		t.Error("re-running into an existing spool without Resume must be rejected")
	}
}
