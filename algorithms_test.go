package mbe_test

import (
	"sort"
	"strings"
	"testing"

	mbe "repro"
)

// TestAlgorithmTableDrift pins the contract that AlgorithmNames, String
// and ParseAlgorithm derive from one table: every listed spelling parses
// and round-trips, every enum value is listed, the menu order is the
// AdaMBE family followed by the remaining engines sorted
// case-insensitively, and the "want a|b|…" error text is generated from
// the list rather than hand-maintained.
func TestAlgorithmTableDrift(t *testing.T) {
	family := []string{"AdaMBE", "ParAdaMBE", "Baseline", "AdaMBE-LN", "AdaMBE-BIT"}
	if len(mbe.AlgorithmNames) < len(family)+1 {
		t.Fatalf("AlgorithmNames suspiciously short: %v", mbe.AlgorithmNames)
	}
	for i, want := range family {
		if mbe.AlgorithmNames[i] != want {
			t.Fatalf("AlgorithmNames[%d] = %q, want the AdaMBE family prefix %v", i, mbe.AlgorithmNames[i], family)
		}
	}
	tail := mbe.AlgorithmNames[len(family):]
	if !sort.SliceIsSorted(tail, func(i, j int) bool {
		return strings.ToLower(tail[i]) < strings.ToLower(tail[j])
	}) {
		t.Fatalf("non-family algorithm names not sorted case-insensitively: %v", tail)
	}

	seen := map[mbe.Algorithm]string{}
	for _, name := range mbe.AlgorithmNames {
		a, err := mbe.ParseAlgorithm(name)
		if err != nil {
			t.Fatalf("listed name %q does not parse: %v", name, err)
		}
		if prev, dup := seen[a]; dup {
			t.Fatalf("names %q and %q parse to the same algorithm %v", prev, name, a)
		}
		seen[a] = name
		// Case-insensitive: the daemon's JSON convention is lowercase.
		for _, variant := range []string{strings.ToLower(name), strings.ToUpper(name)} {
			got, err := mbe.ParseAlgorithm(variant)
			if err != nil || got != a {
				t.Fatalf("ParseAlgorithm(%q) = %v, %v; want %v (case-insensitive)", variant, got, err, a)
			}
		}
		// String round-trips through Parse (display forms like GMBE-sim
		// are accepted too).
		if back, err := mbe.ParseAlgorithm(a.String()); err != nil || back != a {
			t.Fatalf("String %q of %v does not parse back: %v, %v", a.String(), a, back, err)
		}
	}

	// Every enum value is listed exactly once: walk the contiguous enum
	// until String falls off the table.
	n := 0
	for ; !strings.HasPrefix(mbe.Algorithm(n).String(), "Algorithm("); n++ {
	}
	if n != len(mbe.AlgorithmNames) {
		t.Fatalf("%d enum values but %d listed names: %v", n, len(mbe.AlgorithmNames), mbe.AlgorithmNames)
	}

	// The unknown-name error embeds the generated menu, so help text and
	// error text cannot drift apart.
	_, err := mbe.ParseAlgorithm("definitely-not-an-algorithm")
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if want := strings.Join(mbe.AlgorithmNames, "|"); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not embed the generated menu %q", err, want)
	}

	// The default and the daemon's lowercase BBK spelling.
	if a, err := mbe.ParseAlgorithm(""); err != nil || a != mbe.AdaMBE {
		t.Fatalf("empty name = %v, %v; want AdaMBE", a, err)
	}
	if a, err := mbe.ParseAlgorithm("bbk"); err != nil || a != mbe.BBK {
		t.Fatalf(`ParseAlgorithm("bbk") = %v, %v; want BBK`, a, err)
	}
}
