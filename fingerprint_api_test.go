package mbe_test

import (
	"sync"
	"testing"

	mbe "repro"
)

// TestDigestEqualAcrossAlgorithms checks the public fingerprint hook: two
// different engines over the same graph produce identical digests even
// though their emission orders differ completely.
func TestDigestEqualAcrossAlgorithms(t *testing.T) {
	g := mbe.GenerateUniform(11, 60, 30, 240)
	digestOf := func(alg mbe.Algorithm) mbe.Digest {
		t.Helper()
		var d mbe.Digest
		res, err := mbe.Enumerate(g, mbe.Options{Algorithm: alg, OnBiclique: d.Observe})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Count != d.Count {
			t.Fatalf("%s: digest count %d != result count %d", alg, d.Count, res.Count)
		}
		return d
	}
	ref := digestOf(mbe.AdaMBE)
	if ref.Count == 0 {
		t.Fatal("test graph has no bicliques")
	}
	for _, alg := range []mbe.Algorithm{mbe.BaselineMBE, mbe.FMBE, mbe.ParAdaMBE} {
		if d := digestOf(alg); !d.Equal(ref) {
			t.Errorf("%s digest %s != AdaMBE digest %s", alg, d, ref)
		}
	}
}

// TestDigestMergeUnderUnorderedEmit demonstrates the documented pattern
// for concurrent delivery: sharded digests merged at the end must match a
// serial run's digest. The digest is commutative, so any partition of the
// emissions across shards works.
func TestDigestMergeUnderUnorderedEmit(t *testing.T) {
	g := mbe.GenerateUniform(12, 80, 40, 400)
	var serial mbe.Digest
	if _, err := mbe.Enumerate(g, mbe.Options{OnBiclique: serial.Observe}); err != nil {
		t.Fatal(err)
	}

	const nshards = 4
	var shards [nshards]mbe.Digest
	var mu sync.Mutex
	i := 0
	res, err := mbe.Enumerate(g, mbe.Options{
		Algorithm:     mbe.ParAdaMBE,
		Threads:       4,
		UnorderedEmit: true,
		OnBiclique: func(L, R []int32) {
			mu.Lock()
			shards[i%nshards].Observe(L, R)
			i++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var merged mbe.Digest
	for k := range shards {
		merged.Merge(shards[k])
	}
	if merged.Count != res.Count {
		t.Fatalf("merged count %d != result count %d", merged.Count, res.Count)
	}
	if !merged.Equal(serial) {
		t.Fatalf("merged digest %s != serial digest %s", merged, serial)
	}
}
