// Quickstart: build a small bipartite graph, enumerate its maximal
// bicliques with AdaMBE, and print them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mbe "repro"
)

func main() {
	// The paper's Figure 1 graph: 9 users (U) × 4 items (V).
	var edges []mbe.Edge
	for v, us := range [][]int32{
		{0, 1, 2, 4, 5, 6, 7}, // N(v0)
		{0, 1, 2},             // N(v1)
		{0, 2, 3, 4, 5, 6},    // N(v2)
		{0, 3, 4, 5, 6, 8},    // N(v3)
	} {
		for _, u := range us {
			edges = append(edges, mbe.Edge{U: u, V: int32(v)})
		}
	}
	g, err := mbe.FromEdges(9, 4, edges)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %s\n\n", g.Stats())

	// Enumerate with the default algorithm (serial AdaMBE, τ = 64,
	// ascending-degree ordering). The callback's slices are reused by the
	// engine — copy them if you keep them.
	var found int
	res, err := mbe.Enumerate(g, mbe.Options{
		OnBiclique: func(L, R []int32) {
			found++
			fmt.Printf("  biclique %d: L=%v R=%v\n", found, L, R)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d maximal bicliques in %v\n", res.Count, res.Elapsed)

	// The same count, in parallel, on a bigger synthetic graph.
	big := mbe.GenerateAffiliation(1, mbe.AffiliationConfig{
		NU: 5000, NV: 1500, Communities: 600,
		MeanU: 10, MeanV: 4, Density: 0.9, NoiseEdges: 4000,
	})
	pres, err := mbe.Enumerate(big, mbe.Options{Algorithm: mbe.ParAdaMBE})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel run: %d maximal bicliques on %s in %v\n",
		pres.Count, big.Stats(), pres.Elapsed)
}
