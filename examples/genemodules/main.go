// Gene co-expression module discovery — the bioinformatics application
// from the paper's introduction (iMBEA's original domain): a binary
// gene × condition expression matrix is a bipartite graph, and a maximal
// biclique is a *bicluster*: a maximal set of genes expressed under the
// same maximal set of conditions.
//
// The example synthesizes an expression matrix with planted co-expression
// modules plus measurement noise, enumerates all biclusters, and reports
// the largest-area modules.
//
//	go run ./examples/genemodules
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	mbe "repro"
)

const (
	numGenes      = 2500
	numConditions = 60
	modules       = 8
)

func main() {
	rng := rand.New(rand.NewSource(7))
	var edges []mbe.Edge

	// Planted modules: gene sets co-expressed across condition sets, with
	// 5% dropout (missed measurements).
	type module struct{ genes, conds []int32 }
	var planted []module
	for m := 0; m < modules; m++ {
		var mod module
		for i, n := 0, 20+rng.Intn(40); i < n; i++ {
			mod.genes = append(mod.genes, int32(rng.Intn(numGenes)))
		}
		for i, n := 0, 6+rng.Intn(10); i < n; i++ {
			mod.conds = append(mod.conds, int32(rng.Intn(numConditions)))
		}
		planted = append(planted, mod)
		for _, g := range mod.genes {
			for _, c := range mod.conds {
				if rng.Float64() < 0.95 { // dropout noise
					edges = append(edges, mbe.Edge{U: g, V: c})
				}
			}
		}
	}
	// Background expression noise.
	for i := 0; i < 15000; i++ {
		edges = append(edges, mbe.Edge{
			U: int32(rng.Intn(numGenes)),
			V: int32(rng.Intn(numConditions)),
		})
	}

	g, err := mbe.FromEdges(numGenes, numConditions, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expression matrix: %d genes × %d conditions, %d expressed pairs\n",
		g.NU(), g.NV(), g.NumEdges())

	// Biclusters = maximal bicliques with at least 5 genes × 4 conditions.
	type bicluster struct {
		genes, conds int
		area         int
	}
	var clusters []bicluster
	res, err := mbe.Enumerate(g.Orient(), mbe.Options{
		Algorithm: mbe.ParAdaMBE,
		OnBiclique: func(L, R []int32) {
			// After Orient, the smaller side (conditions) is V when
			// conditions < genes; L are genes here.
			if len(L) >= 5 && len(R) >= 4 {
				clusters = append(clusters, bicluster{
					genes: len(L), conds: len(R), area: len(L) * len(R),
				})
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	sort.Slice(clusters, func(i, j int) bool { return clusters[i].area > clusters[j].area })
	fmt.Printf("maximal biclusters: %d (%v); significant (≥5 genes × ≥4 conditions): %d\n",
		res.Count, res.Elapsed, len(clusters))
	for i, c := range clusters {
		if i == modules {
			break
		}
		fmt.Printf("  module %d: %d genes co-expressed under %d conditions (area %d)\n",
			i+1, c.genes, c.conds, c.area)
	}
	if len(clusters) < modules/2 {
		log.Fatalf("expected to recover at least %d planted modules, found %d", modules/2, len(clusters))
	}
	fmt.Println("module recovery: OK")
}
