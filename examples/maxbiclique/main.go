// Maximum-biclique search — the §V applications of AdaMBE: on a
// BookCrossing-like reader × book graph, find (1) the maximum edge
// biclique (the densest fully-connected co-reading block, a natural
// recommendation anchor), (2) the maximum balanced biclique, and (3) a
// personalized maximum biclique around one book, then list all "core
// communities" via size-bounded enumeration.
//
//	go run ./examples/maxbiclique
package main

import (
	"fmt"
	"log"

	mbe "repro"
)

func main() {
	// Reader × book interaction graph (the registry's BookCrossing
	// analogue, scaled for a quick run).
	g := mbe.GenerateAffiliation(77, mbe.AffiliationConfig{
		NU: 3000, NV: 900, Communities: 350,
		MeanU: 12, MeanV: 6, Density: 0.85, NoiseEdges: 2500,
	})
	fmt.Printf("reader-book graph: %s\n\n", g.Stats())

	// 1. Maximum edge biclique: the single densest all-pairs block.
	edge, err := mbe.MaximumEdgeBiclique(g, mbe.FindOptions{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	if !edge.Found {
		log.Fatal("no biclique found")
	}
	fmt.Printf("maximum edge biclique: %d readers × %d books = %d edges (explored %d maximal bicliques)\n",
		len(edge.Best.L), len(edge.Best.R), edge.Best.Edges(), edge.Explored)

	// 2. Maximum balanced biclique: the largest k×k co-reading core.
	bal, err := mbe.MaximumBalancedBiclique(g, mbe.FindOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("maximum balanced biclique: contains a %d×%d core (inside %d×%d)\n",
		bal.Best.Balance(), bal.Best.Balance(), len(bal.Best.L), len(bal.Best.R))

	// 3. Personalized: the strongest cohort around one specific book.
	book := bal.Best.R[0]
	per, err := mbe.PersonalizedMaximumBiclique(g, book, mbe.FindOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("personalized maximum around book v%d: %d readers × %d books (%d edges)\n",
		book, len(per.Best.L), len(per.Best.R), per.Best.Edges())
	if per.Best.Edges() < edge.Best.Edges() && per.Explored > edge.Explored {
		fmt.Println("  (note: personalized search explores a restricted subgraph)")
	}

	// 4. Size-bounded enumeration: every core with ≥8 readers and ≥4 books.
	var cores int
	n, err := mbe.EnumerateSizeBounded(g, 8, 4, func(L, R []int32) {
		cores++
	}, mbe.FindOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-reading cores (≥8 readers × ≥4 books): %d\n", n)
	if int64(cores) != n {
		log.Fatalf("handler count %d != returned %d", cores, n)
	}

	// 5. Top-5 densest blocks for a recommendation shortlist.
	top, err := mbe.TopKEdgeBicliques(g, 5, mbe.FindOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-5 densest co-reading blocks:")
	for i, b := range top {
		fmt.Printf("  #%d: %d readers × %d books = %d edges\n",
			i+1, len(b.L), len(b.R), b.Edges())
	}

	// Sanity: the personalized result must contain the query book.
	found := false
	for _, v := range per.Best.R {
		if v == book {
			found = true
		}
	}
	if !found {
		log.Fatal("personalized result missing the query book")
	}
	fmt.Println("all finder invariants hold")
}
