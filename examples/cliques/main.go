// Maximal clique enumeration on a general graph — the paper's §V transfer
// of AdaMBE's hybrid representation to unipartite mining. The example
// builds a collaboration network with planted research groups (cliques)
// plus random co-authorships, enumerates all maximal cliques, and reports
// the group-size distribution.
//
//	go run ./examples/cliques
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	mbe "repro"
)

func main() {
	const people = 3000
	rng := rand.New(rand.NewSource(99))
	var edges []mbe.UndirectedEdge

	// Planted research groups: everyone in a group has co-authored with
	// everyone else.
	groups := 120
	for g := 0; g < groups; g++ {
		size := 3 + rng.Intn(6)
		members := make([]int32, size)
		for i := range members {
			members[i] = int32(rng.Intn(people))
		}
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if members[i] != members[j] {
					edges = append(edges, mbe.UndirectedEdge{A: members[i], B: members[j]})
				}
			}
		}
	}
	// Random cross-group co-authorships.
	for i := 0; i < 4000; i++ {
		a, b := int32(rng.Intn(people)), int32(rng.Intn(people))
		if a != b {
			edges = append(edges, mbe.UndirectedEdge{A: a, B: b})
		}
	}

	g, err := mbe.NewUndirectedGraph(people, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collaboration network: %d people, %d co-authorships\n", g.N(), g.NumEdges())

	sizeDist := map[int]int{}
	largest := []int32(nil)
	res, err := mbe.MaximalCliques(g, mbe.CliqueOptions{OnClique: func(c []int32) {
		sizeDist[len(c)]++
		if len(c) > len(largest) {
			largest = append(largest[:0], c...)
		}
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("maximal cliques: %d\n", res.Count)

	var sizes []int
	for s := range sizeDist {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	fmt.Println("size distribution:")
	for _, s := range sizes {
		if s >= 3 {
			fmt.Printf("  %d-person groups: %d\n", s, sizeDist[s])
		}
	}
	fmt.Printf("largest research group found: %d people %v\n", len(largest), largest)
	if len(largest) < 4 {
		log.Fatal("expected to recover a planted group of ≥4")
	}
}
