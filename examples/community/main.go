// Community search in a social affiliation network — the paper's
// community-search application: users × groups, where a maximal biclique
// (a user cohort sharing a full set of groups) is a tightly-knit
// community core, and the bicliques containing a query user rank that
// user's communities.
//
// The example loads the YouTube-like registry dataset, enumerates all
// maximal bicliques once, indexes them by user, and answers community
// queries for the most active users.
//
//	go run ./examples/community
package main

import (
	"fmt"
	"log"
	"sort"

	mbe "repro"
)

type community struct {
	users  []int32
	groups []int32
}

func main() {
	// User-Membership-Group affiliation analogue (YouTube in Table I).
	g, err := mbe.Dataset("YG")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("affiliation network: %s\n", g.Stats())

	// One enumeration pass builds the community index: only cores with at
	// least 4 users sharing at least 3 groups are retained.
	const minUsers, minGroups = 4, 3
	var cores []community
	res, err := mbe.Enumerate(g, mbe.Options{
		Algorithm: mbe.ParAdaMBE,
		OnBiclique: func(L, R []int32) {
			if len(L) >= minUsers && len(R) >= minGroups {
				cores = append(cores, community{
					users:  append([]int32(nil), L...),
					groups: append([]int32(nil), R...),
				})
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("maximal bicliques: %d in %v; community cores (≥%d users, ≥%d groups): %d\n\n",
		res.Count, res.Elapsed, minUsers, minGroups, len(cores))

	// Index cores by member.
	byUser := map[int32][]int{}
	for i, c := range cores {
		for _, u := range c.users {
			byUser[u] = append(byUser[u], i)
		}
	}

	// Query the three users appearing in the most cores.
	type activity struct {
		user  int32
		cores int
	}
	var act []activity
	for u, cs := range byUser {
		act = append(act, activity{u, len(cs)})
	}
	sort.Slice(act, func(i, j int) bool {
		if act[i].cores != act[j].cores {
			return act[i].cores > act[j].cores
		}
		return act[i].user < act[j].user
	})
	for i := 0; i < 3 && i < len(act); i++ {
		u := act[i].user
		fmt.Printf("query user u%d: member of %d community cores; strongest:\n", u, act[i].cores)
		best, bestScore := -1, -1
		for _, ci := range byUser[u] {
			score := len(cores[ci].users) * len(cores[ci].groups)
			if score > bestScore {
				best, bestScore = ci, score
			}
		}
		c := cores[best]
		fmt.Printf("  %d users sharing all of %d groups %v\n", len(c.users), len(c.groups), c.groups)
	}
	if len(act) == 0 {
		log.Fatal("no community cores found — dataset degenerate?")
	}
}
