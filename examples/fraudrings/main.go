// Fraud-ring detection on a user–item purchase graph — the click-farming
// scenario from the paper's introduction: "fraudulent users purchase a set
// of products on behalf of malicious merchants", which shows up as a large
// biclique (every ring member bought every boosted item).
//
// The example plants three fraud rings inside organic purchase traffic,
// enumerates maximal bicliques with ParAdaMBE, flags those above a
// (users × items) size threshold, and checks the plants are recovered.
//
//	go run ./examples/fraudrings
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	mbe "repro"
)

const (
	numUsers = 4000
	numItems = 1200

	// A cohort of ≥ minUsers accounts that all bought the same ≥ minItems
	// items is suspicious.
	minUsers = 8
	minItems = 5
)

type ring struct {
	users []int32
	items []int32
}

func main() {
	rng := rand.New(rand.NewSource(2024))

	// Organic traffic: power-law-ish purchases.
	var edges []mbe.Edge
	for i := 0; i < 26000; i++ {
		u := int32(rng.Intn(numUsers))
		v := int32(rng.ExpFloat64() * float64(numItems) / 6)
		if v >= numItems {
			v = int32(numItems - 1)
		}
		edges = append(edges, mbe.Edge{U: u, V: v})
	}

	// Planted rings: disjoint user cohorts, each boosting its item set.
	plants := []ring{
		plantRing(rng, 100, 12, 900, 6),
		plantRing(rng, 300, 15, 950, 8),
		plantRing(rng, 700, 9, 1020, 7),
	}
	for _, p := range plants {
		for _, u := range p.users {
			for _, v := range p.items {
				edges = append(edges, mbe.Edge{U: u, V: v})
			}
		}
	}

	g, err := mbe.FromEdges(numUsers, numItems, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("purchase graph: %s\n", g.Stats())

	// Enumerate and flag: a maximal biclique with many users AND many
	// items is a candidate fraud ring.
	type hit struct {
		users, items []int32
	}
	var hits []hit
	res, err := mbe.Enumerate(g, mbe.Options{
		Algorithm: mbe.ParAdaMBE,
		OnBiclique: func(L, R []int32) {
			if len(L) >= minUsers && len(R) >= minItems {
				hits = append(hits, hit{
					users: append([]int32(nil), L...),
					items: append([]int32(nil), R...),
				})
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("maximal bicliques: %d (%v); suspicious (≥%d users × ≥%d items): %d\n",
		res.Count, res.Elapsed, minUsers, minItems, len(hits))
	sort.Slice(hits, func(i, j int) bool {
		return len(hits[i].users)*len(hits[i].items) > len(hits[j].users)*len(hits[j].items)
	})
	for i, h := range hits {
		if i == 5 {
			fmt.Printf("  … and %d more\n", len(hits)-5)
			break
		}
		fmt.Printf("  ring candidate: %d users × %d items (users %v…)\n",
			len(h.users), len(h.items), h.users[:3])
	}

	// Verify every planted ring was recovered inside some flagged hit.
	recovered := 0
	for _, p := range plants {
		for _, h := range hits {
			if containsAll(h.users, p.users) && containsAll(h.items, p.items) {
				recovered++
				break
			}
		}
	}
	fmt.Printf("planted rings recovered: %d/%d\n", recovered, len(plants))
	if recovered != len(plants) {
		log.Fatal("detection failed: a planted ring was missed")
	}
}

func plantRing(rng *rand.Rand, userBase int32, users int, itemBase int32, items int) ring {
	r := ring{}
	for i := 0; i < users; i++ {
		r.users = append(r.users, userBase+int32(i))
	}
	for i := 0; i < items; i++ {
		r.items = append(r.items, itemBase+int32(i))
	}
	return r
}

func containsAll(haystack, needles []int32) bool {
	set := make(map[int32]bool, len(haystack))
	for _, x := range haystack {
		set[x] = true
	}
	for _, n := range needles {
		if !set[n] {
			return false
		}
	}
	return true
}
